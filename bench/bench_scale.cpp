// E18 — simulator kernel scale sweep: cycle-driven reference engine vs
// the hybrid event-driven kernel (--engine event) on topologies far past
// the paper's 16x16 mesh — a 64x64 mesh (4096 nodes) and BMINs up to
// 4096 ports, with multicast groups of k >= 1024.
//
// Each configuration runs the identical seeded placements under both
// engines, asserts the SimStats are bit-identical (the equivalence
// contract, enforced here on workloads far larger than the unit tests),
// and reports simulated cycles, wall-clock, delivered messages/second,
// and the event/cycle speedup.  Runs are timed serially (one simulator
// at a time) so the wall-clock comparison is not confounded by the
// thread pool.
#include <chrono>
#include <iostream>

#include "bmin/bmin_topology.hpp"
#include "harness/harness.hpp"
#include "mesh/mesh_topology.hpp"

using namespace pcm;
using namespace pcm::harness;

namespace {

struct EngineRun {
  long long cycles = 0;    ///< simulated cycles, summed over placements
  long long delivered = 0; ///< messages delivered, summed over placements
  double wall_s = 0;
  sim::SimStats last;      ///< stats of the last placement (equivalence check)
};

EngineRun run_engine(const sim::Topology& topo, const MeshShape* shape,
                     const rt::MulticastRuntime& rtm, McastAlgorithm alg,
                     std::span<const analysis::Placement> placements,
                     Bytes payload, sim::EngineKind engine) {
  EngineRun out;
  const auto start = std::chrono::steady_clock::now();
  for (const analysis::Placement& p : placements) {
    sim::Simulator sim(topo, sim::SimConfig{.engine = engine});
    (void)rtm.run_algorithm(sim, alg, p.source, p.dests, payload, shape);
    out.cycles += sim.stats().cycles;
    out.delivered += sim.stats().messages_delivered;
    out.last = sim.stats();
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;
  out.wall_s = wall.count();
  return out;
}

bool same_stats(const sim::SimStats& a, const sim::SimStats& b) {
  return a.cycles == b.cycles && a.flit_hops == b.flit_hops &&
         a.channel_conflicts == b.channel_conflicts &&
         a.messages_delivered == b.messages_delivered &&
         a.max_inflight_flits == b.max_inflight_flits &&
         a.undelivered == b.undelivered;
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("bench_scale", argc, argv);
  rt::RuntimeConfig cfg;
  rt::MulticastRuntime rtm(cfg);
  const Bytes size = 4096;
  const int reps = 2;  // runs are large; placements stay paired across engines

  h.preamble(
      "E18: simulator kernel scale sweep — cycle vs event engine on "
      "large topologies",
      cfg, size, reps);
  h.set_meta("engine", "both");

  struct Config {
    std::string label;
    std::unique_ptr<sim::Topology> topo;
    const MeshShape* shape;
    McastAlgorithm alg;
    int nodes;
    int k;
  };
  std::vector<Config> configs;
  {
    auto m32 = mesh::make_mesh2d(32);
    const MeshShape* s32 = &m32->shape();
    configs.push_back({"mesh 32x32 OPT-Mesh k=256", std::move(m32), s32,
                       McastAlgorithm::kOptMesh, 1024, 256});
    auto m64 = mesh::make_mesh2d(64);
    const MeshShape* s64 = &m64->shape();
    configs.push_back({"mesh 64x64 OPT-Mesh k=1024", std::move(m64), s64,
                       McastAlgorithm::kOptMesh, 4096, 1024});
    configs.push_back({"bmin 1024 OPT-MIN k=256",
                       bmin::make_bmin(1024, bmin::UpPolicy::kAdaptive),
                       nullptr, McastAlgorithm::kOptMin, 1024, 256});
    configs.push_back({"bmin 4096 OPT-MIN k=1024",
                       bmin::make_bmin(4096, bmin::UpPolicy::kAdaptive),
                       nullptr, McastAlgorithm::kOptMin, 4096, 1024});
  }

  analysis::Table t({"config", "cycles", "cycle wall s", "event wall s",
                     "cycle msg/s", "event msg/s", "speedup"});
  bool diverged = false;
  for (const Config& c : configs) {
    const auto placements =
        analysis::sample_placements(kSeed + c.k, c.nodes, c.k, reps);
    const EngineRun cyc = run_engine(*c.topo, c.shape, rtm, c.alg, placements,
                                     size, sim::EngineKind::kCycle);
    const EngineRun evt = run_engine(*c.topo, c.shape, rtm, c.alg, placements,
                                     size, sim::EngineKind::kEvent);
    if (!same_stats(cyc.last, evt.last)) {
      std::cerr << "bench_scale: ENGINE DIVERGENCE on " << c.label << "\n";
      diverged = true;
    }
    auto rate = [](const EngineRun& r) {
      return r.wall_s > 0 ? static_cast<double>(r.delivered) / r.wall_s : 0.0;
    };
    t.add_row({c.label, std::to_string(cyc.cycles),
               analysis::Table::num(cyc.wall_s, 3),
               analysis::Table::num(evt.wall_s, 3),
               analysis::Table::num(rate(cyc), 0),
               analysis::Table::num(rate(evt), 0),
               analysis::Table::num(
                   evt.wall_s > 0 ? cyc.wall_s / evt.wall_s : 0.0, 1)});
  }
  h.report(t, "E18 (cycle vs event engine, identical results)",
           "scale_sweep.csv");

  std::cout << "\nExpectation: the contention-free schedules (Theorems 1-2) "
               "stay laminar end-to-end, so the event engine touches only "
               "reserve/release/delivery cycles and the speedup grows with "
               "topology size; results are bit-identical by construction.\n";
  return diverged ? 1 : 0;
}
