// E14 — p-port ablation (beyond the paper; the paper assumes one-port).
//
// With p send engines and p NI channel pairs per node, the injection
// bottleneck relaxes.  Star-shaped trees gain the most (they are
// injection-bound); the OPT tree — built for the one-port model — gains
// less, showing where a p-port-aware DP would be the next step.
#include "harness/harness.hpp"
#include "mesh/mesh_topology.hpp"

using namespace pcm;
using namespace pcm::harness;

int main(int argc, char** argv) {
  Harness h("bench_multiport", argc, argv);
  const Bytes size = 4096;
  const int k = 32;

  std::cout << "E14: one-port vs two-port NIs, 32-node multicast, 4 KB, "
               "16x16 mesh\n";

  analysis::Table t({"ports", "Sequential", "U-Mesh", "OPT-Mesh", "OPT-Mesh blk"});
  for (int ports : {1, 2, 4}) {
    mesh::MeshTopology topo(MeshShape::square2d(16), mesh::RouteOrder::kHighestFirst,
                            ports);
    rt::RuntimeConfig cfg;
    cfg.send_engines = ports;
    rt::MulticastRuntime rtm(cfg);
    const auto placements = analysis::sample_placements(kSeed, 256, k, kPaperReps);
    const Point seq =
        h.run_point(topo, &topo.shape(), rtm, McastAlgorithm::kSequential, placements, size);
    const Point u =
        h.run_point(topo, &topo.shape(), rtm, McastAlgorithm::kUMesh, placements, size);
    const Point om =
        h.run_point(topo, &topo.shape(), rtm, McastAlgorithm::kOptMesh, placements, size);
    t.add_row({std::to_string(ports), analysis::Table::num(seq.latency.mean, 0),
               analysis::Table::num(u.latency.mean, 0),
               analysis::Table::num(om.latency.mean, 0),
               analysis::Table::num(om.mean_conflicts, 0)});
  }
  h.report(t, "p-port ablation (latency, cycles)", "multiport.csv");

  std::cout << "\nExpectation: Sequential gains the most (injection-bound). "
               "OPT-Mesh can even degrade slightly: simultaneous sends from "
               "one node now contend on the shared first-hop channel and "
               "wormhole arbitration may delay the critical-path message — "
               "evidence that p-port machines need a p-port-aware DP, not "
               "just more engines.\n";
  return 0;
}
