// E13 — Collectives beyond the paper: reduction (reverse multicast) and
// barrier on the tuned trees.
//
// Dimension-ordered routing is asymmetric (reverse of an XY path is a YX
// path), so Theorem 1 does not transfer to the upward direction; this
// bench quantifies how much contention the reversed trees actually see
// and how reduce/barrier latency compares to the multicast bound.
#include "harness/harness.hpp"
#include "bmin/bmin_topology.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/collectives.hpp"

using namespace pcm;
using namespace pcm::harness;

namespace {

void sweep(Harness& h, const sim::Topology& topo, const MeshShape* shape,
           McastAlgorithm alg, const std::string& title, const std::string& csv) {
  rt::RuntimeConfig cfg;
  rt::CollectiveRuntime coll(cfg);
  const Bytes payload = 4096;
  analysis::Table t({"nodes", "multicast", "reduce", "reduce blk", "barrier",
                     "reduce/model"});
  for (int k : {8, 16, 32, 64, 128}) {
    if (k > topo.num_nodes()) break;
    const auto placements =
        analysis::sample_placements(kSeed + k, topo.num_nodes(), k, kPaperReps);
    // Indexed slots keep the summation in placement order, so the output
    // is identical at any --jobs value.
    struct Slot {
      double mcast = 0, reduce = 0, blk = 0, barrier = 0, model = 0;
    };
    std::vector<Slot> slots(placements.size());
    h.parallel_for(placements.size(), [&](std::size_t i) {
      const auto& p = placements[i];
      Slot& s = slots[i];
      const TwoParam tp = cfg.machine.two_param(
          coll.multicast().wire_bytes(payload, 1));
      const MulticastTree tree = build_multicast(alg, p.source, p.dests, tp, shape);
      sim::Simulator s1(topo), s2(topo), s3(topo);
      s.mcast += static_cast<double>(coll.multicast().run(s1, tree, payload).latency);
      const rt::ReduceResult r = coll.run_reduce(s2, tree, payload);
      s.reduce += static_cast<double>(r.latency);
      s.blk += static_cast<double>(r.channel_conflicts);
      s.model += static_cast<double>(r.model_latency);
      s.barrier += static_cast<double>(coll.run_barrier(s3, tree, payload).latency);
    });
    double mcast = 0, reduce = 0, blk = 0, barrier = 0, model = 0;
    for (const Slot& s : slots) {
      mcast += s.mcast;
      reduce += s.reduce;
      blk += s.blk;
      barrier += s.barrier;
      model += s.model;
    }
    const double n = static_cast<double>(placements.size());
    t.add_row({std::to_string(k), analysis::Table::num(mcast / n, 0),
               analysis::Table::num(reduce / n, 0), analysis::Table::num(blk / n, 0),
               analysis::Table::num(barrier / n, 0),
               analysis::Table::num(reduce / model, 3)});
  }
  h.report(t, title, csv);
}

}  // namespace

int main(int argc, char** argv) {
  Harness h("bench_collectives", argc, argv);
  rt::RuntimeConfig cfg;
  h.preamble("E13: reduction and barrier over tuned trees (4 KB partials)",
             cfg, 4096, kPaperReps);

  const auto mesh_topo = mesh::make_mesh2d(16);
  sweep(h, *mesh_topo, &mesh_topo->shape(), McastAlgorithm::kOptMesh,
        "16x16 mesh, OPT-mesh trees", "collectives_mesh.csv");

  const auto bmin_topo = bmin::make_bmin(128);
  sweep(h, *bmin_topo, nullptr, McastAlgorithm::kOptMin, "128-node BMIN, OPT-min trees",
        "collectives_bmin.csv");

  std::cout << "\nExpectation: reduce tracks the multicast bound but may show "
               "nonzero blocked cycles on the mesh (reversed XY paths are YX "
               "paths, outside Theorem 1); barrier ~ reduce + multicast.\n";
  return 0;
}
