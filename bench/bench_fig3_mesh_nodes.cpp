// E3 — Paper Figure 3: 4-Kbyte multicast latency vs number of multicast
// nodes on the 16x16 wormhole mesh; U-Mesh vs OPT-Tree vs OPT-Mesh.
#include "harness/harness.hpp"
#include "mesh/mesh_topology.hpp"

using namespace pcm;
using namespace pcm::harness;

int main(int argc, char** argv) {
  Harness h("bench_fig3_mesh_nodes", argc, argv);
  const auto topo = mesh::make_mesh2d(16);
  const MeshShape* shape = &topo->shape();
  rt::RuntimeConfig cfg;
  rt::MulticastRuntime rtm(cfg);
  const Bytes size = 4096;

  h.preamble("E3 / Figure 3: 4 KB multicast on 16x16 mesh, latency vs "
                 "number of nodes",
                 cfg, size, kPaperReps);

  analysis::Table t({"nodes", "U-Mesh", "OPT-Tree", "OPT-Mesh", "OPT-Tree confl",
                     "U/OPT-Mesh", "depth U", "depth OPT"});
  for (int k : {4, 8, 16, 32, 64, 96, 128, 192, 256}) {
    const auto placements = analysis::sample_placements(kSeed + k, 256, k, kPaperReps);
    const Point u = h.run_point(*topo, shape, rtm, McastAlgorithm::kUMesh, placements, size);
    const Point ot =
        h.run_point(*topo, shape, rtm, McastAlgorithm::kOptTree, placements, size);
    const Point om =
        h.run_point(*topo, shape, rtm, McastAlgorithm::kOptMesh, placements, size);
    // Depths are placement-independent (shape functions of k).
    const TwoParam tp = cfg.machine.two_param(rtm.wire_bytes(size, 1));
    const MulticastTree ut =
        build_multicast(McastAlgorithm::kUMesh, placements[0].source,
                        placements[0].dests, tp, shape);
    const MulticastTree omt =
        build_multicast(McastAlgorithm::kOptMesh, placements[0].source,
                        placements[0].dests, tp, shape);
    t.add_row({std::to_string(k), analysis::Table::num(u.latency.mean, 0),
               analysis::Table::num(ot.latency.mean, 0),
               analysis::Table::num(om.latency.mean, 0),
               analysis::Table::num(ot.mean_conflicts, 0),
               analysis::Table::num(u.latency.mean / om.latency.mean, 2),
               std::to_string(tree_depth(ut)), std::to_string(tree_depth(omt))});
  }
  h.report(t, "Figure 3 (multicast latency, cycles)", "fig3_mesh_nodes.csv");

  std::cout << "\nExpectation (paper): U-Mesh's depth (ceil log2 k) grows "
               "faster than the OPT trees' effective depth, so its curve "
               "diverges; OPT-Tree's contention overhead grows with k; "
               "OPT-Mesh stays lowest everywhere.\n";
  return 0;
}
