// E22 — Static steady-state prediction vs measured streaming throughput.
//
// For every (topology, algorithm, window) cell the static analyzer
// (lint::lint_stream) replays the windowed streaming schedule
// symbolically, detects the steady-state period, and predicts the
// per-slot pipeline interval and sustained slots/kcycle — without
// simulating a flit.  The same cell then runs for real through the
// stream runtime on the identical placements, and the table reports both
// rates side by side with the relative error.
//
// The point is E19's crossover, established statically this time: at
// window 1 the latency-optimal trees (OPT-Mesh / OPT-Min) win, while any
// deeper window is software-bound at the source, where U-Mesh / U-Min's
// shorter send ladder sets the interval — the analyzer proves it via the
// saturated busy bound instead of measuring it.  On fault-free runs the
// static and measured rates agree exactly (the tests pin bit-equal
// commit times); the error column is a drift alarm, not a tolerance.
#include <vector>

#include "bmin/bmin_topology.hpp"
#include "harness/harness.hpp"
#include "lint/lint.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/stream_runtime.hpp"

using namespace pcm;
using namespace pcm::harness;

namespace {

constexpr Bytes kBytes = 64;
constexpr int kGroup = 16;
constexpr int kReps = 4;
constexpr int kSlots = 8000;
constexpr int kWindows[] = {1, 2, 4};

struct Cell {
  const sim::Topology* topo;
  const MeshShape* shape;
  const char* topo_name;
  McastAlgorithm alg;
  int window;
  int rep;
};

}  // namespace

int main(int argc, char** argv) {
  Harness h("bench_lint_stream", argc, argv);
  h.downgrade_engine("cannot drive streaming workloads");
  rt::RuntimeConfig cfg;
  rt::MulticastRuntime rtm(cfg);
  const rt::StreamRuntime srt(rtm);
  h.preamble(
      "E22: static pipeline-interval prediction vs measured throughput",
      cfg, kBytes, kReps);

  const auto mesh_topo = mesh::make_mesh2d(16);
  const bmin::BminTopology bmin_topo(64);
  const auto mesh_placements =
      analysis::sample_placements(kSeed, mesh_topo->num_nodes(), kGroup, kReps);
  const auto bmin_placements =
      analysis::sample_placements(kSeed, bmin_topo.num_nodes(), kGroup, kReps);
  const TwoParam tp = cfg.machine.two_param(rtm.wire_bytes(kBytes, 1));

  std::vector<Cell> cells;
  for (const McastAlgorithm alg :
       {McastAlgorithm::kOptMesh, McastAlgorithm::kUMesh})
    for (const int w : kWindows)
      for (int rep = 0; rep < kReps; ++rep)
        cells.push_back(
            {mesh_topo.get(), &mesh_topo->shape(), "mesh:16", alg, w, rep});
  for (const McastAlgorithm alg :
       {McastAlgorithm::kOptMin, McastAlgorithm::kUMin})
    for (const int w : kWindows)
      for (int rep = 0; rep < kReps; ++rep)
        cells.push_back({&bmin_topo, nullptr, "bmin:64", alg, w, rep});

  std::vector<lint::StreamLintReport> predicted(cells.size());
  std::vector<rt::StreamResult> measured(cells.size());
  h.parallel_for(cells.size(), [&](std::size_t i) {
    const Cell& c = cells[i];
    const analysis::Placement& p = (c.shape != nullptr ? mesh_placements
                                                       : bmin_placements)
        [static_cast<std::size_t>(c.rep)];
    const MulticastTree tree =
        build_multicast(c.alg, p.source, p.dests, tp, c.shape);
    predicted[i] =
        lint::lint_stream(tree, *c.topo, cfg, sim::SimConfig{}, kBytes, kSlots,
                          c.window);
    sim::Simulator sim(*c.topo, h.sim_config());
    rt::StreamConfig scfg;
    scfg.window_size = c.window;
    scfg.slots = kSlots;
    scfg.bytes = kBytes;
    scfg.alg = c.alg;
    scfg.shape = c.shape;
    measured[i] = srt.run(sim, p.source, p.dests, scfg);
  });

  analysis::Table t({"topology", "algorithm", "window", "interval",
                     "busy bound", "saturated", "static slots/kcyc",
                     "measured slots/kcyc", "err %", "blocked"});
  for (std::size_t i = 0; i < cells.size(); i += kReps) {
    double stat_rate = 0, meas_rate = 0, interval = 0;
    long long blocked = 0;
    bool saturated = true;
    Time busy = 0;
    for (std::size_t r = i; r < i + kReps; ++r) {
      stat_rate += predicted[r].slots_per_kcycle;
      meas_rate += 1000.0 * static_cast<double>(measured[r].committed) /
                   static_cast<double>(measured[r].makespan);
      interval += predicted[r].interval;
      blocked += measured[r].channel_conflicts;
      saturated = saturated && predicted[r].saturated;
      busy = std::max(busy, predicted[r].busy_bound);
    }
    const double n = kReps;
    const Cell& c = cells[i];
    t.add_row({c.topo_name, std::string(algorithm_name(c.alg)),
               std::to_string(c.window), analysis::Table::num(interval / n, 1),
               std::to_string(busy), saturated ? "yes" : "no",
               analysis::Table::num(stat_rate / n, 3),
               analysis::Table::num(meas_rate / n, 3),
               analysis::Table::num(
                   meas_rate > 0
                       ? 100.0 * (stat_rate - meas_rate) / meas_rate
                       : 0.0,
                   3),
               std::to_string(blocked)});
  }
  h.report(t, "static vs measured streaming throughput", "lint_stream.csv");

  std::cout << "\nExpectation: zero error everywhere — the analyzer replays\n"
               "the fault-free pipeline exactly.  The crossover is visible\n"
               "in both columns: OPT leads at window 1, U-* lead (saturated\n"
               "busy bound) from window 2 on, on the mesh and the BMIN\n"
               "alike.  Statics cost microseconds; the measured column\n"
               "simulates ~10^5 messages per cell.\n";
  return 0;
}
