// Shared harness for the per-figure bench binaries.
//
// Every bench follows the paper's method (Sec. 5): a data point is the
// mean multicast latency over `reps` independent random placements (the
// paper uses 16) with identical parameters; the same seeded placements
// are reused across algorithms so series are paired.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/sampling.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "core/algorithms.hpp"
#include "runtime/mcast_runtime.hpp"
#include "sim/simulator.hpp"

namespace pcm::benchx {

inline constexpr int kPaperReps = 16;
inline constexpr std::uint64_t kSeed = 1997;

/// One measured data point.
struct Point {
  analysis::Stats latency;      ///< simulated multicast latency (cycles)
  analysis::Stats model;        ///< contention-free model bound (cycles)
  double mean_conflicts = 0;    ///< mean head-blocked cycles per run
};

/// Runs `alg` over the given placements and summarizes.
inline Point run_point(const sim::Topology& topo, const MeshShape* shape,
                       const rt::MulticastRuntime& rtm, McastAlgorithm alg,
                       const std::vector<analysis::Placement>& placements,
                       Bytes payload) {
  std::vector<double> lat, model;
  double conflicts = 0;
  for (const auto& p : placements) {
    sim::Simulator sim(topo);
    const rt::McastResult res =
        rtm.run_algorithm(sim, alg, p.source, p.dests, payload, shape);
    lat.push_back(static_cast<double>(res.latency));
    model.push_back(static_cast<double>(res.model_latency));
    conflicts += static_cast<double>(res.channel_conflicts);
  }
  Point pt;
  pt.latency = analysis::summarize(lat);
  pt.model = analysis::summarize(model);
  pt.mean_conflicts = conflicts / static_cast<double>(placements.size());
  return pt;
}

/// Prints the experiment preamble: machine parameters at a reference
/// message size, so every output records its configuration.
inline void print_preamble(const std::string& what, const rt::RuntimeConfig& cfg,
                           Bytes ref_bytes, int reps) {
  std::cout << what << "\n"
            << "machine: " << describe(cfg.machine, ref_bytes) << "\n"
            << "reps/point: " << reps << " random placements (seed " << kSeed
            << "), wormhole flit-level simulation\n";
}

/// The paper reports message sizes as "0k, 8k, ..., 64k".
inline std::string size_label(Bytes b) {
  if (b % 1024 == 0) return std::to_string(b / 1024) + "k";
  return std::to_string(b);
}

}  // namespace pcm::benchx
