// E9 — Engineering microbenchmarks (google-benchmark): costs of the
// building blocks — the O(k) DP, tree expansion, chain sorting, path
// tracing, and raw simulator throughput.
#include <benchmark/benchmark.h>

#include <numeric>

#include "analysis/sampling.hpp"
#include "bmin/bmin_topology.hpp"
#include "core/algorithms.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"

namespace {

using namespace pcm;

void BM_OptSplitTable(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(opt_split_table(400, 1500, k));
  state.SetComplexityN(k);
}
BENCHMARK(BM_OptSplitTable)->Range(16, 1 << 14)->Complexity(benchmark::oN);

void BM_OptSplitTableExhaustive(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(opt_split_table_exhaustive(400, 1500, k));
  state.SetComplexityN(k);
}
BENCHMARK(BM_OptSplitTableExhaustive)->Range(16, 1 << 10)->Complexity(benchmark::oNSquared);

void BM_BuildChainSplitTree(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const SplitTable table = opt_split_table(400, 1500, k);
  Chain chain;
  chain.nodes.resize(k);
  std::iota(chain.nodes.begin(), chain.nodes.end(), 0);
  chain.source_pos = k / 2;
  for (auto _ : state)
    benchmark::DoNotOptimize(build_chain_split_tree(chain, table));
}
BENCHMARK(BM_BuildChainSplitTree)->Range(16, 1 << 12);

void BM_DimensionOrderedChain(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const MeshShape shape = MeshShape::square2d(64);  // 4096 nodes
  analysis::Rng rng(7);
  const analysis::Placement p =
      analysis::sample_placement(rng, shape.num_nodes(), k);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        make_chain(p.source, p.dests, ChainOrder::kDimensionOrdered, &shape));
}
BENCHMARK(BM_DimensionOrderedChain)->Range(16, 1 << 12);

void BM_TracePathMesh(benchmark::State& state) {
  const auto topo = mesh::make_mesh2d(16);
  NodeId d = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::trace_path(*topo, 0, d));
    d = (d % 255) + 1;
  }
}
BENCHMARK(BM_TracePathMesh);

void BM_TracePathBmin(benchmark::State& state) {
  const auto topo = bmin::make_bmin(128);
  NodeId d = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::trace_path(*topo, 0, d));
    d = (d % 127) + 1;
  }
}
BENCHMARK(BM_TracePathBmin);

void BM_SimulatorMulticast(benchmark::State& state) {
  // Full 32-node 4 KB OPT-mesh multicast on the 16x16 mesh; reports
  // simulated cycles per wall second.
  const auto topo = mesh::make_mesh2d(16);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const auto placements = analysis::sample_placements(3, 256, 32, 1);
  long long cycles = 0;
  for (auto _ : state) {
    sim::Simulator sim(*topo);
    const auto res = rtm.run_algorithm(sim, McastAlgorithm::kOptMesh,
                                       placements[0].source, placements[0].dests,
                                       4096, &topo->shape());
    benchmark::DoNotOptimize(res.latency);
    cycles += sim.stats().cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorMulticast)->Unit(benchmark::kMillisecond);

void BM_SimulatorSaturatedMesh(benchmark::State& state) {
  // Raw engine throughput under load: every node of the 16x16 mesh posts
  // a 64-flit unicast to the diagonally opposite node, all ready at cycle
  // 0, so routers stay busy and arbitration contends heavily.  No runtime
  // layer — this isolates the simulator hot path and reports flit-channel
  // traversals per wall second.
  const auto topo = mesh::make_mesh2d(16);
  const int n = topo->num_nodes();
  long long hops = 0;
  for (auto _ : state) {
    sim::Simulator sim(*topo);
    for (NodeId s = 0; s < n; ++s) {
      sim::Message m;
      m.src = s;
      m.dst = (n - 1) - s;
      m.flits = 64;
      m.ready_time = 0;
      sim.post(m);
    }
    sim.run_until_idle();
    benchmark::DoNotOptimize(sim.stats().cycles);
    hops += sim.stats().flit_hops;
  }
  state.counters["flit_hops/s"] = benchmark::Counter(
      static_cast<double>(hops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorSaturatedMesh)->Unit(benchmark::kMillisecond);

void BM_SimulatorContendedMulticast(benchmark::State& state) {
  const auto topo = mesh::make_mesh2d(16);
  rt::MulticastRuntime rtm(rt::RuntimeConfig{});
  const auto placements = analysis::sample_placements(3, 256, 32, 1);
  for (auto _ : state) {
    sim::Simulator sim(*topo);
    benchmark::DoNotOptimize(
        rtm.run_algorithm(sim, McastAlgorithm::kOptTree, placements[0].source,
                          placements[0].dests, 4096, &topo->shape())
            .latency);
  }
}
BENCHMARK(BM_SimulatorContendedMulticast)->Unit(benchmark::kMillisecond);

}  // namespace
