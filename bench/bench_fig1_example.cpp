// E1 — Paper Figure 1: the worked OPT-mesh example.
//
// A 6x6 2-D mesh, one source and 7 destinations, t_hold = 20,
// t_end = 55.  The paper states the OPT-mesh multicast latency is 130
// while the U-mesh (binomial) tree needs 165.  This bench regenerates
// the split table, the tree, both model latencies, and additionally runs
// the same trees on the flit-level simulator with a machine whose
// parameters realize (20, 55).
#include <array>
#include <iostream>

#include "analysis/contention.hpp"
#include "analysis/viz.hpp"
#include "harness/harness.hpp"
#include "mesh/mesh_topology.hpp"

using namespace pcm;

int main(int argc, char** argv) {
  harness::Harness h("bench_fig1_example", argc, argv);
  const TwoParam tp{20, 55};
  std::cout << "E1 / Figure 1: OPT-mesh worked example (6x6 mesh, 8 nodes, "
               "t_hold=20, t_end=55)\n";

  // The optimal split table of Algorithm 2.1.
  const SplitTable opt = opt_split_table(tp.t_hold, tp.t_end, 8);
  analysis::Table dp({"i", "j_i", "t[i]"});
  for (int i = 1; i <= 8; ++i)
    dp.add_row({std::to_string(i), i >= 2 ? std::to_string(opt.j[i]) : "-",
                std::to_string(opt.t[i])});
  h.report(dp, "OPT-tree dynamic program (Algorithm 2.1)");

  // A Figure-1-like placement: source and 7 destinations scattered over
  // the 6x6 mesh (the original coordinates are not machine-readable from
  // the paper; any placement yields the same model latencies).
  const auto topo = mesh::make_mesh2d(6);
  const MeshShape& shape = topo->shape();
  const NodeId src = shape.node_at({3, 1});
  const std::array<NodeId, 7> dests{
      shape.node_at({1, 0}), shape.node_at({4, 0}), shape.node_at({0, 2}),
      shape.node_at({5, 2}), shape.node_at({2, 3}), shape.node_at({1, 5}),
      shape.node_at({4, 5})};

  const MulticastTree opt_tree =
      build_multicast(McastAlgorithm::kOptMesh, src, dests, tp, &shape);
  const MulticastTree u_tree =
      build_multicast(McastAlgorithm::kUMesh, src, dests, tp, &shape);

  std::cout << "\nOPT-mesh tree (dimension-ordered chain + OPT splits, "
               "@model receive times):\n"
            << analysis::tree_ascii(opt_tree, &tp);

  analysis::Table t({"tree", "model latency", "paper", "depth", "contention-free"});
  const auto cf = [&](const MulticastTree& tr) {
    return analysis::model_conflicts(tr, *topo, tp).contention_free() ? "yes" : "NO";
  };
  t.add_row({"OPT-Mesh", std::to_string(model_latency(opt_tree, tp)), "130",
             std::to_string(tree_depth(opt_tree)), cf(opt_tree)});
  t.add_row({"U-Mesh", std::to_string(model_latency(u_tree, tp)), "165",
             std::to_string(tree_depth(u_tree)), cf(u_tree)});
  h.report(t, "Figure 1 latencies (model, cycles)");

  // Flit-level confirmation with a machine realizing t_hold=20, t_end=55
  // for a minimal (single-flit) message: t_send=20, t_recv=20,
  // t_net = 13 + 1*1 + 1 = 15 at the nominal 1-hop distance.
  rt::RuntimeConfig cfg;
  cfg.machine.send = LinearCost{20, 0};
  cfg.machine.recv = LinearCost{20, 0};
  cfg.machine.net_fixed = 13;
  cfg.machine.router_delay = 1;
  cfg.machine.bytes_per_cycle = 16;
  cfg.machine.nominal_hops = 1;
  cfg.carry_address_list = false;
  cfg.base_header_bytes = 8;
  rt::MulticastRuntime rtm(cfg);

  sim::Simulator s1(*topo), s2(*topo);
  const auto r_opt = rtm.run(s1, opt_tree, 0);
  const auto r_u = rtm.run(s2, u_tree, 0);
  analysis::Table st({"tree", "simulated", "model", "conflicts"});
  st.add_row({"OPT-Mesh", std::to_string(r_opt.latency),
              std::to_string(r_opt.model_latency), std::to_string(r_opt.channel_conflicts)});
  st.add_row({"U-Mesh", std::to_string(r_u.latency), std::to_string(r_u.model_latency),
              std::to_string(r_u.channel_conflicts)});
  h.report(st, "Flit-level run of the same trees (cycles)");

  std::cout << "\nExpectation (paper): OPT-mesh 130 vs U-mesh 165; both "
               "contention-free; simulated values track the model up to the "
               "true hop distances.\n";
  return 0;
}
