#!/usr/bin/env sh
# Determinism lint: every pcm result must be reproducible from the seed.
#
# Rejects, anywhere under src/ tools/ bench/ tests/ except the one
# sanctioned RNG (src/analysis/rng.hpp):
#   1. ambient-entropy sources: std::random_device, time(nullptr), srand,
#      C rand()  — results would differ run to run;
#   2. iteration over unordered containers (hash order is
#      implementation-defined and salted in some standard libraries);
#   3. unordered containers in files not on the reviewed allowlist —
#      membership-only uses are fine, but each new use must be reviewed
#      for result-affecting iteration and then listed here.
#
# Exit code: 0 clean, 1 findings (printed), 2 usage error.
set -u

cd "$(dirname "$0")/.." || exit 2
dirs="src tools bench tests"
fail=0

say() { printf '%s\n' "$*"; }

# 1. Ambient entropy.  rand( must not match substrings like substream_ or
#    hash-named helpers, hence the leading non-identifier guard.
hits=$(grep -rnE 'std::random_device|time\(nullptr|[^_[:alnum:]]srand\(|[^_[:alnum:]]rand\(' \
         $dirs --include='*.cpp' --include='*.hpp' |
       grep -v 'src/analysis/rng\.hpp')
if [ -n "$hits" ]; then
  say "determinism: ambient entropy source (seed every RNG via analysis::Rng / substream_seed):"
  say "$hits"
  fail=1
fi

# 2. Iterating an unordered container (range-for or explicit iterators on
#    the same line as the type) is order-nondeterministic.
hits=$(grep -rnE 'for[[:space:]]*\(.*unordered_(map|set)' $dirs \
         --include='*.cpp' --include='*.hpp')
if [ -n "$hits" ]; then
  say "determinism: iteration over an unordered container (hash order is not stable):"
  say "$hits"
  fail=1
fi

# 3. Unordered containers only in reviewed files.  Allowlist entries were
#    checked to use them for membership/lookup only, never iterated in a
#    result-affecting path.
allow='^src/core/chain\.cpp:|^src/lint/stream\.cpp:'
hits=$(grep -rln 'unordered_\(map\|set\)' $dirs \
         --include='*.cpp' --include='*.hpp' |
       sed 's/$/:/' | grep -vE "$allow")
if [ -n "$hits" ]; then
  say "determinism: unreviewed unordered-container use (iteration order is"
  say "implementation-defined; prefer sorted vectors or std::map in result"
  say "paths, or add the file to the allowlist in this script after review):"
  say "$hits" | sed 's/:$//'
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  say "determinism lint: clean"
fi
exit "$fail"
