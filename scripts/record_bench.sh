#!/usr/bin/env sh
# Records the simulator's perf trajectory into BENCH_sim.json.
#
# Full mode (default):
#   scripts/record_bench.sh [BUILD_DIR]
# runs the tracked benches — bench_fig2_mesh_msgsize and
# bench_fig3_mesh_nodes under the event engine, bench_lint, and the E18
# scale sweep (cycle vs event head-to-head; simulated cycles, wall-clock,
# messages/second, per-engine speedup) — each with --json, and composes
# the reports into BENCH_sim.json at the repo root.  Commit the file to
# track perf across commits.
#
# Smoke mode:
#   scripts/record_bench.sh --smoke [BUILD_DIR]
# runs only bench_fig2_mesh_msgsize (16x16 mesh) under both engines and
# fails (exit 1) if the event engine is not at least as fast as the
# cycle engine — the CI perf gate.  Each engine gets `runs` attempts and
# the best wall time is compared, so scheduler noise cannot flake the
# gate.  It then gates streaming throughput on the same fig2 parameters:
# a window-8 stream must beat the window-1 (stop-and-wait) stream in
# simulated makespan (pcmcast --stream --json; fully deterministic), and
# finally gates the flight recorder: a traced fig2 run must stay within
# 5% of the untraced reference.
#
# Bench CSVs land under results/ (gitignored); only BENCH_sim.json is
# meant to be committed.
#
# Exit code: 0 success, 1 perf regression (smoke) or bench failure,
# 2 usage / missing binaries.
set -u

smoke=0
if [ "${1:-}" = "--smoke" ]; then
  smoke=1
  shift
fi
build="${1:-build}"

cd "$(dirname "$0")/.." || exit 2
if [ ! -x "$build/bench/bench_fig2_mesh_msgsize" ]; then
  echo "record_bench: $build/bench/bench_fig2_mesh_msgsize not found;" \
       "build first (cmake -B build -S . && cmake --build build -j)" >&2
  exit 2
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Extracts the "wall_seconds" field from a bench JSON report.
wall_of() {
  sed -n 's/.*"wall_seconds": \([0-9.eE+-]*\).*/\1/p' "$1"
}

if [ "$smoke" -eq 1 ]; then
  runs=3
  best_cycle=""
  best_event=""
  for engine in cycle event; do
    best=""
    i=0
    while [ "$i" -lt "$runs" ]; do
      i=$((i + 1))
      "$build/bench/bench_fig2_mesh_msgsize" --jobs 1 --engine "$engine" \
          --json "$tmp/fig2_$engine.json" >/dev/null || exit 1
      w="$(wall_of "$tmp/fig2_$engine.json")"
      if [ -z "$best" ] || awk "BEGIN{exit !($w < $best)}"; then
        best="$w"
      fi
    done
    if [ "$engine" = cycle ]; then best_cycle="$best"; else best_event="$best"; fi
  done
  echo "record_bench smoke: fig2 16x16 best-of-$runs" \
       "cycle=${best_cycle}s event=${best_event}s"
  if awk "BEGIN{exit !($best_event <= $best_cycle)}"; then
    echo "record_bench smoke: OK (event engine is not slower than cycle)"
  else
    echo "record_bench smoke: FAIL — event engine slower than the cycle" \
         "reference on the 16x16 fig2 workload" >&2
    exit 1
  fi

  # Streaming throughput gate (fig2 parameters: 16x16 mesh, 16 nodes,
  # 4 KB payloads): pipelining at window 8 must beat stop-and-wait.  The
  # compared makespans are simulated cycles, so this cannot flake.
  pcm="$build/tools/pcmcast"
  if [ ! -x "$pcm" ]; then
    echo "record_bench: $pcm not found; build pcmcast first" >&2
    exit 2
  fi
  dests="17,34,51,68,85,102,119,136,153,170,187,204,221,238,255"
  for w in 1 8; do
    "$pcm" --topology mesh:16 --bytes 4096 --source 0 --dests "$dests" \
        --stream 64 --window "$w" --json "$tmp/stream_w$w.json" \
        >/dev/null || exit 1
  done
  makespan_of() {
    sed -n 's/.*"makespan": "\([0-9]*\)".*/\1/p' "$1"
  }
  mk1="$(makespan_of "$tmp/stream_w1.json")"
  mk8="$(makespan_of "$tmp/stream_w8.json")"
  if [ -z "$mk1" ] || [ -z "$mk8" ]; then
    echo "record_bench smoke: FAIL — could not read stream makespans" >&2
    exit 1
  fi
  echo "record_bench smoke: stream 64x4KB makespan window1=$mk1 window8=$mk8"
  if [ "$mk8" -lt "$mk1" ]; then
    echo "record_bench smoke: OK (window-8 stream beats stop-and-wait)"
  else
    echo "record_bench smoke: FAIL — windowed streaming no faster than" \
         "stop-and-wait on the fig2 workload" >&2
    exit 1
  fi

  # Failover gate (same fig2 parameters): kill the source mid-stream with
  # the failure detector and succession enabled.  The run must exit 0,
  # commit all 64 slots through exactly one failover, and finish within a
  # fixed multiple of the clean window-8 makespan — detection plus the
  # window replay is bounded work, not a restart of the stream.  All
  # compared quantities are simulated cycles, so this cannot flake.
  "$pcm" --topology mesh:16 --bytes 4096 --source 0 --dests "$dests" \
      --stream 64 --window 8 --heartbeat 4000 --failover \
      --faults "node:0@200000" --json "$tmp/stream_failover.json" \
      >/dev/null || {
    echo "record_bench smoke: FAIL — failover stream did not exit 0" >&2
    exit 1
  }
  meta_of() {
    sed -n 's/.*"'"$2"'": "\([0-9]*\)".*/\1/p' "$1"
  }
  fmk="$(meta_of "$tmp/stream_failover.json" makespan)"
  fcommit="$(meta_of "$tmp/stream_failover.json" committed)"
  fcount="$(meta_of "$tmp/stream_failover.json" failovers)"
  if [ -z "$fmk" ] || [ -z "$fcommit" ] || [ -z "$fcount" ]; then
    echo "record_bench smoke: FAIL — could not read failover meta" >&2
    exit 1
  fi
  echo "record_bench smoke: failover stream makespan=$fmk" \
       "committed=$fcommit failovers=$fcount (clean window8=$mk8)"
  if [ "$fcommit" -ne 64 ] || [ "$fcount" -ne 1 ]; then
    echo "record_bench smoke: FAIL — source kill must commit all 64 slots" \
         "via exactly one failover" >&2
    exit 1
  fi
  if [ "$fmk" -lt $((mk8 * 3)) ]; then
    echo "record_bench smoke: OK (failover completes within 3x the clean" \
         "window-8 makespan)"
  else
    echo "record_bench smoke: FAIL — failover makespan $fmk exceeds 3x the" \
         "clean window-8 makespan $mk8" >&2
    exit 1
  fi

  # Trace overhead gate: the flight recorder must stay cheap when it is
  # on — the traced fig2 run may cost at most 5% over the untraced
  # best-of-$runs cycle reference measured above.  Best-of-$runs again so
  # scheduler noise cannot flake the gate.
  best_traced=""
  i=0
  while [ "$i" -lt "$runs" ]; do
    i=$((i + 1))
    "$build/bench/bench_fig2_mesh_msgsize" --jobs 1 --engine cycle \
        --trace "$tmp/fig2.pcmt" --json "$tmp/fig2_traced.json" \
        >/dev/null || exit 1
    w="$(wall_of "$tmp/fig2_traced.json")"
    if [ -z "$best_traced" ] || awk "BEGIN{exit !($w < $best_traced)}"; then
      best_traced="$w"
    fi
  done
  echo "record_bench smoke: fig2 16x16 best-of-$runs" \
       "untraced=${best_cycle}s traced=${best_traced}s"
  if awk "BEGIN{exit !($best_traced <= $best_cycle * 1.05)}"; then
    echo "record_bench smoke: OK (tracing overhead within 5%)"
    exit 0
  fi
  echo "record_bench smoke: FAIL — tracing costs more than 5% on the fig2" \
       "workload (untraced ${best_cycle}s, traced ${best_traced}s)" >&2
  exit 1
fi

run() {
  name="$1"
  shift
  echo "record_bench: $name $*"
  "$build/bench/$name" "$@" --json "$tmp/$name.json" >/dev/null || exit 1
}

run bench_fig2_mesh_msgsize --engine event
run bench_fig3_mesh_nodes --engine event
run bench_lint
run bench_scale

out=BENCH_sim.json
{
  printf '{\n'
  printf '  "suite": "record_bench",\n'
  printf '  "benches": [\n'
  first=1
  for name in bench_fig2_mesh_msgsize bench_fig3_mesh_nodes bench_lint \
              bench_scale; do
    [ "$first" -eq 1 ] || printf ',\n'
    first=0
    # Each report is already a JSON object; indent it two spaces.
    sed 's/^/  /' "$tmp/$name.json" | sed '${/^[[:space:]]*$/d}'
  done
  printf '\n  ]\n}\n'
} > "$out"
echo "record_bench: wrote $out"
