// Future-work walkthrough (paper Sec. 6): multicast on a network where no
// contention-free node ordering exists — a unidirectional butterfly MIN —
// and how far *temporal* ordering gets.  Prints the chains, conflict
// scores, and the simulated outcome side by side.
#include <iostream>

#include "analysis/sampling.hpp"
#include "analysis/viz.hpp"
#include "butterfly/butterfly_topology.hpp"
#include "butterfly/temporal_order.hpp"
#include "runtime/mcast_runtime.hpp"

int main() {
  using namespace pcm;

  const auto topo = butterfly::make_butterfly(64);
  rt::RuntimeConfig cfg;
  rt::MulticastRuntime runtime(cfg);
  const Bytes payload = 4096;
  const TwoParam tp = cfg.machine.two_param(runtime.wire_bytes(payload, 1));

  std::cout << "Butterfly example: 24-node multicast on a 64-node "
               "unidirectional MIN\n"
            << "machine: " << describe(cfg.machine, payload) << "\n\n";

  analysis::Rng rng(2026);
  const analysis::Placement p = analysis::sample_placement(rng, 64, 24);
  const SplitTable table = opt_split_table(tp.t_hold, tp.t_end, 24);

  // Lexicographic chain (the BMIN recipe) — no guarantee here.
  const Chain lex = make_chain(p.source, p.dests, ChainOrder::kLexicographic);
  const int lex_score =
      butterfly::temporal_conflict_score(lex, table, *topo, tp);

  // Temporal tuning: local search over orderings.
  butterfly::TemporalOrderOptions opts;
  opts.budget = 400;
  opts.seed = 7;
  const auto tuned = butterfly::temporal_order(p.source, p.dests, *topo, tp, opts);

  std::cout << "predicted conflicting send pairs: lexicographic=" << lex_score
            << ", temporally tuned=" << tuned.final_conflicts << " ("
            << tuned.moves_accepted << "/" << tuned.moves_tried
            << " moves accepted)\n\n";

  auto simulate = [&](const Chain& chain, const char* name) {
    sim::Simulator sim(*topo);
    const auto res = runtime.run(sim, build_chain_split_tree(chain, table), payload);
    std::cout << name << ": latency " << res.latency << " cycles (model bound "
              << res.model_latency << "), blocked " << res.channel_conflicts
              << " cycles\n";
    return res.latency;
  };
  const Time l1 = simulate(lex, "lexicographic order");
  const Time l2 = simulate(tuned.chain, "temporal order    ");

  std::cout << "\ntuned tree:\n"
            << analysis::tree_ascii(build_chain_split_tree(tuned.chain, table), &tp)
            << "\nReading: the butterfly has exactly one path per node pair, "
               "so some conflicts are structural — ordering can only push "
               "them apart in time (here: "
            << (l1 > l2 ? "successfully" : "already clean") << ").\n";
  return 0;
}
