// SP-class scenario: collective distribution on a 128-node bidirectional
// MIN (2x2 switches, turnaround routing).  Shows OPT-min against U-min
// across message sizes and the effect of the switch's up-routing policy
// on the untuned tree.
#include <iostream>
#include <vector>

#include "analysis/sampling.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "bmin/bmin_topology.hpp"
#include "runtime/mcast_runtime.hpp"

int main() {
  using namespace pcm;

  const auto det = bmin::make_bmin(128, bmin::UpPolicy::kSourceAddress);
  const auto ada = bmin::make_bmin(128, bmin::UpPolicy::kAdaptive);
  rt::RuntimeConfig cfg;
  rt::MulticastRuntime runtime(cfg);
  const int group = 48;
  const int reps = 16;

  std::cout << "SP-class example: multicast to a " << group
            << "-node partition of a 128-node BMIN\n"
            << "machine: " << describe(cfg.machine, 8192) << "\n\n";

  analysis::Table table({"size", "U-Min", "OPT-Min", "speedup", "OPT-Tree det",
                         "OPT-Tree adaptive"});
  for (Bytes size : {512LL, 2048LL, 8192LL, 32768LL}) {
    const auto placements = analysis::sample_placements(7, 128, group, reps);
    auto mean = [&](const sim::Topology& topo, McastAlgorithm alg) {
      std::vector<double> lat;
      for (const auto& p : placements) {
        sim::Simulator sim(topo);
        lat.push_back(static_cast<double>(
            runtime.run_algorithm(sim, alg, p.source, p.dests, size).latency));
      }
      return analysis::summarize(lat).mean;
    };
    const double umin = mean(*det, McastAlgorithm::kUMin);
    const double optmin = mean(*det, McastAlgorithm::kOptMin);
    table.add_row({std::to_string(size), analysis::Table::num(umin, 0),
                   analysis::Table::num(optmin, 0),
                   analysis::Table::num(umin / optmin, 2) + "x",
                   analysis::Table::num(mean(*det, McastAlgorithm::kOptTree), 0),
                   analysis::Table::num(mean(*ada, McastAlgorithm::kOptTree), 0)});
  }
  table.print(std::to_string(group) + "-node multicast latency (cycles, " +
              std::to_string(reps) + " placements)");

  std::cout << "\nReading: OPT-Min's node ordering removes the contention "
               "that the untuned OPT-Tree pays; adaptive up-routing (the "
               "BMIN's extra paths) recovers part of that loss without any "
               "software tuning.\n";
  return 0;
}
