// The paper's full workflow, end to end:
//
//   1. *Measure* the communication parameters at the application level
//      (ref [5]): run point-to-point probes on the target network.
//   2. Feed the measured (t_hold, t_end) to the OPT-tree DP.
//   3. Apply the architecture-dependent node ordering for the target
//      topology (OPT-mesh or OPT-min).
//   4. Verify the tuned tree achieves its model bound on the network.
#include <iostream>

#include "analysis/sampling.hpp"
#include "analysis/table.hpp"
#include "bmin/bmin_topology.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"
#include "runtime/param_probe.hpp"

int main() {
  using namespace pcm;

  rt::RuntimeConfig cfg;
  rt::MulticastRuntime runtime(cfg);
  const Bytes payload = 8192;

  const auto mesh_topo = mesh::make_mesh2d(16);
  const auto bmin_topo = bmin::make_bmin(128);

  // Step 1: measure.
  const rt::ProbeResult mesh_probe =
      rt::probe_parameters(*mesh_topo, cfg.machine, payload, 64, 11);
  const rt::ProbeResult bmin_probe =
      rt::probe_parameters(*bmin_topo, cfg.machine, payload, 64, 11);

  analysis::Table probes({"network", "t_net (min/mean/max)", "t_hold", "t_end",
                          "model t_end"});
  probes.add_row({"16x16 mesh",
                  std::to_string(mesh_probe.t_net_min) + "/" +
                      std::to_string(mesh_probe.t_net) + "/" +
                      std::to_string(mesh_probe.t_net_max),
                  std::to_string(mesh_probe.t_hold), std::to_string(mesh_probe.t_end),
                  std::to_string(cfg.machine.t_end(payload))});
  probes.add_row({"128-node BMIN",
                  std::to_string(bmin_probe.t_net_min) + "/" +
                      std::to_string(bmin_probe.t_net) + "/" +
                      std::to_string(bmin_probe.t_net_max),
                  std::to_string(bmin_probe.t_hold), std::to_string(bmin_probe.t_end),
                  std::to_string(cfg.machine.t_end(payload))});
  probes.print("Measured parameters (" + std::to_string(payload) + " B messages)");

  // Steps 2-4 on the mesh: build from the *measured* parameters.
  const auto placements = analysis::sample_placements(3, 256, 32, 4);
  analysis::Table runs({"placement", "tree t[k] (model)", "simulated", "conflicts"});
  for (size_t i = 0; i < placements.size(); ++i) {
    const auto& p = placements[i];
    const MulticastTree tree = build_multicast(
        McastAlgorithm::kOptMesh, p.source, p.dests, mesh_probe.two_param(),
        &mesh_topo->shape());
    sim::Simulator sim(*mesh_topo);
    const rt::McastResult res = runtime.run(sim, tree, payload);
    runs.add_row({std::to_string(i),
                  std::to_string(model_latency(tree, mesh_probe.two_param())),
                  std::to_string(res.latency), std::to_string(res.channel_conflicts)});
  }
  runs.print("OPT-mesh trees built from measured parameters (32 nodes)");

  std::cout << "\nReading: measured t_end brackets the configured model "
               "(wormhole latency is distance-insensitive: min/max spread is "
               "small), and the tuned trees run contention-free at their "
               "predicted latency.\n";
  return 0;
}
