// Paragon-class scenario: a data-parallel application on a 16x16
// wormhole mesh broadcasts a 16 KB model update from a master node to a
// 64-node worker group.  Compares every multicast algorithm the library
// implements and reports where the time goes.
#include <iostream>
#include <vector>

#include "analysis/sampling.hpp"
#include "analysis/stats.hpp"
#include "analysis/table.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"

int main() {
  using namespace pcm;

  const auto topo = mesh::make_mesh2d(16);
  const MeshShape& shape = topo->shape();
  rt::RuntimeConfig cfg;
  rt::MulticastRuntime runtime(cfg);
  const Bytes payload = 16384;
  const int group = 64;
  const int reps = 16;

  std::cout << "Paragon-class example: 16 KB broadcast to a " << group
            << "-node worker group on a 16x16 wormhole mesh\n"
            << "machine: " << describe(cfg.machine, payload) << "\n\n";

  const auto placements = analysis::sample_placements(42, 256, group, reps);
  analysis::Table table({"algorithm", "mean latency", "95% ci", "worst", "conflicts",
                         "vs OPT-Mesh"});
  const McastAlgorithm algs[] = {McastAlgorithm::kOptMesh, McastAlgorithm::kUMesh,
                                 McastAlgorithm::kOptTree, McastAlgorithm::kBinomial,
                                 McastAlgorithm::kSequential};
  double best = 0;
  for (McastAlgorithm alg : algs) {
    std::vector<double> lat;
    double conflicts = 0;
    for (const auto& p : placements) {
      sim::Simulator sim(*topo);
      const auto res =
          runtime.run_algorithm(sim, alg, p.source, p.dests, payload, &shape);
      lat.push_back(static_cast<double>(res.latency));
      conflicts += static_cast<double>(res.channel_conflicts);
    }
    const analysis::Stats s = analysis::summarize(lat);
    if (alg == McastAlgorithm::kOptMesh) best = s.mean;
    table.add_row({std::string(algorithm_name(alg)), analysis::Table::num(s.mean, 0),
                   "+-" + analysis::Table::num(s.ci95, 0),
                   analysis::Table::num(s.max, 0),
                   analysis::Table::num(conflicts / reps, 0),
                   analysis::Table::num(s.mean / best, 2) + "x"});
  }
  table.print("64-node, 16 KB multicast (cycles, " + std::to_string(reps) +
              " placements)");

  std::cout << "\nReading: OPT-Mesh is the tuned parameterized tree "
               "(contention-free); OPT-Tree is the same tree without node "
               "ordering; U-Mesh is the portable binomial tree; Sequential "
               "is the naive star.\n";
  return 0;
}
