// Quickstart: build an optimal multicast tree for your machine and run it
// on the flit-level simulator.
//
//   1. Describe the machine with the parameterized communication model
//      (or measure it — see examples/tune_params.cpp).
//   2. Derive (t_hold, t_end) for your message size.
//   3. Build the architecture-tuned tree (OPT-mesh here).
//   4. Execute it on the simulator and compare with the model bound.
#include <array>
#include <iostream>

#include "core/algorithms.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"

int main() {
  using namespace pcm;

  // A 16x16 wormhole mesh with XY routing (Paragon-class).
  const auto topo = mesh::make_mesh2d(16);

  // Machine description: software overheads linear in the message size.
  rt::RuntimeConfig cfg;                 // MachineParams::classic() defaults
  rt::MulticastRuntime runtime(cfg);

  // Multicast: 4 KB payload from node (3,2) to seven destinations.
  const MeshShape& shape = topo->shape();
  const NodeId source = shape.node_at({3, 2});
  const std::array<NodeId, 7> dests{
      shape.node_at({0, 0}),  shape.node_at({15, 1}), shape.node_at({7, 4}),
      shape.node_at({12, 9}), shape.node_at({2, 11}), shape.node_at({9, 13}),
      shape.node_at({15, 15})};
  const Bytes payload = 4096;

  // The two parameters that determine the optimal tree.
  const TwoParam tp = cfg.machine.two_param(runtime.wire_bytes(payload, 1));
  std::cout << "machine: " << describe(cfg.machine, payload) << "\n"
            << "tree parameters: t_hold=" << tp.t_hold << " t_end=" << tp.t_end
            << "\n\n";

  // Architecture-dependent tuning: OPT splits over the dimension-ordered
  // chain (contention-free on this mesh, Theorem 1).
  const MulticastTree tree =
      build_multicast(McastAlgorithm::kOptMesh, source, dests, tp, &shape);
  std::cout << "OPT-mesh tree: depth " << tree_depth(tree) << ", max fanout "
            << max_fanout(tree) << ", " << tree.sends.size() << " unicasts\n";

  // Run it.
  sim::Simulator sim(*topo);
  const rt::McastResult res = runtime.run(sim, tree, payload);
  std::cout << "simulated latency: " << res.latency << " cycles\n"
            << "model lower bound: " << res.model_latency << " cycles\n"
            << "channel conflicts: " << res.channel_conflicts << " (expect 0)\n";

  // Contrast with the portable binomial tree (U-mesh).
  const MulticastTree utree =
      build_multicast(McastAlgorithm::kUMesh, source, dests, tp, &shape);
  sim::Simulator sim2(*topo);
  const rt::McastResult ures = runtime.run(sim2, utree, payload);
  std::cout << "U-mesh (binomial) latency: " << ures.latency << " cycles ("
            << static_cast<double>(ures.latency) / static_cast<double>(res.latency)
            << "x)\n";
  return 0;
}
