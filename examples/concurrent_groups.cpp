// Concurrent collectives: several multicast groups sharing one mesh, as a
// collective-communication layer would issue them.  Shows per-group
// latency, cross-group interference, and a channel-utilization heatmap.
#include <iostream>

#include "analysis/sampling.hpp"
#include "analysis/trace.hpp"
#include "analysis/viz.hpp"
#include "mesh/mesh_topology.hpp"
#include "runtime/mcast_runtime.hpp"

int main() {
  using namespace pcm;

  const auto topo = mesh::make_mesh2d(16);
  const MeshShape& shape = topo->shape();
  rt::RuntimeConfig cfg;
  rt::MulticastRuntime runtime(cfg);
  const Bytes payload = 4096;
  const int k = 16;
  const int groups = 4;
  const TwoParam tp = cfg.machine.two_param(runtime.wire_bytes(payload, 1));

  std::cout << "Concurrent-groups example: " << groups << " simultaneous " << k
            << "-node OPT-mesh multicasts on a 16x16 mesh\n"
            << "machine: " << describe(cfg.machine, payload) << "\n\n";

  analysis::Rng rng(11);
  std::vector<rt::MulticastRuntime::GroupRun> work;
  for (int g = 0; g < groups; ++g) {
    const auto p = analysis::sample_placement(rng, 256, k);
    rt::MulticastRuntime::GroupRun gr;
    gr.tree = build_multicast(McastAlgorithm::kOptMesh, p.source, p.dests, tp, &shape);
    gr.payload = payload;
    work.push_back(std::move(gr));
  }

  sim::Simulator sim(*topo);
  analysis::ChannelTraceRecorder trace(*topo);
  sim.set_observer(&trace);
  const auto results = runtime.run_concurrent(sim, std::move(work));

  for (size_t g = 0; g < results.size(); ++g) {
    const auto& r = results[g];
    std::cout << "group " << g << ": latency " << r.latency << " cycles (solo bound "
              << r.model_latency << ", x"
              << static_cast<double>(r.latency) / static_cast<double>(r.model_latency)
              << "), blocked " << r.channel_conflicts << " cycles\n";
  }

  std::cout << "\n" << analysis::mesh_heatmap(*topo, trace, sim.now())
            << "\nReading: each group alone would be contention-free "
               "(Theorem 1), but groups interfere with each other — the "
               "blocked cycles above are entirely cross-group.\n";
  return 0;
}
